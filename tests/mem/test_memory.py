"""Unit tests for the banked main memory."""

from repro.config import MemoryConfig
from repro.mem.memory import MainMemory


def make():
    return MainMemory(MemoryConfig())


def test_uninitialized_reads_zero():
    mem = make()
    assert mem.load(0x1234) == 0


def test_store_load_roundtrip():
    mem = make()
    mem.store(0x100, 42)
    assert mem.load(0x100) == 42


def test_bulk_store_publishes_buffer():
    mem = make()
    mem.bulk_store({8: 1, 16: 2})
    assert mem.load(8) == 1 and mem.load(16) == 2


def test_snapshot_is_a_copy():
    mem = make()
    mem.store(0, 7)
    snap = mem.snapshot()
    snap[0] = 99
    assert mem.load(0) == 7


def test_access_latency_from_config():
    assert MainMemory(MemoryConfig(latency=99)).access_latency() == 99


def test_bank_interleave():
    mem = make()
    assert mem.bank_of_line(0) == 0
    assert mem.bank_of_line(5) == 1
    assert {mem.bank_of_line(i) for i in range(4)} == {0, 1, 2, 3}


def test_counters():
    mem = make()
    mem.load(1)
    mem.store(1, 2)
    mem.bulk_store({2: 3, 3: 4})
    assert mem.reads == 1 and mem.writes == 3
