"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import EventQueue


def test_events_run_in_time_order():
    q = EventQueue()
    order = []
    q.schedule(30, lambda: order.append("c"))
    q.schedule(10, lambda: order.append("a"))
    q.schedule(20, lambda: order.append("b"))
    q.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    q = EventQueue()
    order = []
    for tag in "xyz":
        q.schedule(5, lambda t=tag: order.append(t))
    q.run()
    assert order == ["x", "y", "z"]


def test_now_advances_to_event_time():
    q = EventQueue()
    seen = []
    q.schedule(7, lambda: seen.append(q.now))
    q.schedule(42, lambda: seen.append(q.now))
    q.run()
    assert seen == [7, 42]


def test_nested_scheduling_is_relative_to_current_time():
    q = EventQueue()
    seen = []

    def outer():
        q.schedule(5, lambda: seen.append(q.now))

    q.schedule(10, outer)
    q.run()
    assert seen == [15]


def test_cancelled_event_is_skipped():
    q = EventQueue()
    hit = []
    ev = q.schedule(1, lambda: hit.append(1))
    ev.cancel()
    q.schedule(2, lambda: hit.append(2))
    q.run()
    assert hit == [2]


def test_negative_delay_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.schedule(-1, lambda: None)


def test_at_schedules_absolute_time():
    q = EventQueue()
    seen = []
    q.schedule(3, lambda: q.at(9, lambda: seen.append(q.now)))
    q.run()
    assert seen == [9]


def test_event_budget_guard():
    q = EventQueue()

    def rearm():
        q.schedule(1, rearm)

    q.schedule(1, rearm)
    with pytest.raises(RuntimeError, match="event budget"):
        q.run(max_events=100)


def test_time_budget_guard():
    q = EventQueue()

    def rearm():
        q.schedule(10, rearm)

    q.schedule(10, rearm)
    with pytest.raises(RuntimeError, match="time budget"):
        q.run(max_time=1000)


def test_len_counts_live_events():
    q = EventQueue()
    a = q.schedule(1, lambda: None)
    q.schedule(2, lambda: None)
    assert len(q) == 2
    a.cancel()
    assert len(q) == 1


def test_run_returns_executed_count():
    q = EventQueue()
    for i in range(5):
        q.schedule(i, lambda: None)
    assert q.run() == 5


def test_peak_queue_tracks_live_events_only():
    # regression: cancelled entries awaiting pop are queue garbage, not
    # queue pressure — peak_queue must not count them
    q = EventQueue()
    events = [q.schedule(5, lambda: None) for _ in range(10)]
    assert q.peak_queue == 10
    for ev in events[:8]:
        ev.cancel()
    q.schedule(1, lambda: None)  # live: 2 pending + this = 3 < 10
    q.run()
    assert q.peak_queue == 10

    q2 = EventQueue()
    for _ in range(4):
        q2.schedule(3, lambda: None).cancel()
    q2.schedule(2, lambda: None)
    q2.run()
    # each event is cancelled before the next schedule, so at most one
    # event is ever live; counting cancelled garbage would report 5 here
    assert q2.peak_queue == 1
