"""Tests for the event-tracing / phase-accounting subsystem."""

import json

import pytest

from repro.config import SimConfig
from repro.htm.ops import Tx, Write
from repro.simulator import Simulator
from repro.trace import (
    EVENT_KINDS,
    TX_BEGIN,
    TX_COMMIT,
    LatencyHistogram,
    Tracer,
    make_tracer,
)
from repro.workloads import make_workload

ALL_SCHEMES = ("logtm-se", "fastm", "suv", "lazy", "dyntm", "dyntm+suv")


def run_synthetic(scheme, trace=None, seed=3):
    program = make_workload("synthetic", n_threads=4, seed=seed, scale="tiny")
    sim = Simulator(SimConfig(n_cores=4), scheme=scheme, seed=seed,
                    trace=trace)
    return sim, sim.run(program.threads)


# -- LatencyHistogram --------------------------------------------------


def test_histogram_empty():
    h = LatencyHistogram()
    d = h.as_dict()
    assert d["count"] == 0 and d["max"] == 0


def test_histogram_exact_max_and_mean():
    h = LatencyHistogram()
    for v in (1, 2, 3, 10):
        h.record(v)
    d = h.as_dict()
    assert d["count"] == 4
    assert d["max"] == 10
    assert d["total"] == 16
    assert d["mean"] == 4.0


def test_histogram_percentiles_bounded_by_max():
    h = LatencyHistogram()
    for v in (5, 5, 5, 1000):
        h.record(v)
    # p50 falls in the bucket holding 5 (upper bound 7)
    assert h.percentile(0.5) in (5, 7)
    # percentiles never exceed the observed maximum
    assert h.percentile(0.99) <= 1000


def test_histogram_merge_matches_combined():
    a, b, c = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
    for v in (1, 8, 64):
        a.record(v)
        c.record(v)
    for v in (2, 2048):
        b.record(v)
        c.record(v)
    a.merge(b)
    assert a.as_dict() == c.as_dict()


def test_histogram_huge_values_clamp_to_last_bucket():
    h = LatencyHistogram()
    h.record(1 << 60)
    assert h.as_dict()["count"] == 1
    assert h.as_dict()["max"] == 1 << 60


# -- Tracer basics -----------------------------------------------------


def test_metrics_only_tracer_records_no_events():
    t = Tracer()
    assert t.events is None
    t.note_window(10, committed=True)
    assert t.windows == 1
    assert t.phase_breakdown()["events"]["recorded"] == 0


def test_ring_buffer_bounded_and_counts_drops():
    t = Tracer(events=True, capacity=4)
    for i in range(10):
        t.emit(i, TX_BEGIN, core=0)
    rows = list(t.iter_events())
    assert len(rows) == 4
    assert t.dropped == 6
    # oldest events were dropped, newest kept
    assert [r["ts"] for r in rows] == [6, 7, 8, 9]


def test_make_tracer_normalization():
    assert make_tracer(None).events is None
    assert make_tracer(False).events is None
    assert make_tracer(True).events is not None
    custom = Tracer(events=True, capacity=2)
    assert make_tracer(custom) is custom
    sized = make_tracer(8)
    assert sized.events is not None and sized.events.maxlen == 8


def test_event_kinds_are_unique():
    assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)


# -- simulator integration ---------------------------------------------


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_tracing_does_not_change_simulated_time(scheme):
    _, plain = run_synthetic(scheme)
    _, traced = run_synthetic(scheme, trace=True)
    assert traced.total_cycles == plain.total_cycles
    assert traced.commits == plain.commits
    assert traced.aborts == plain.aborts


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_trace_is_seed_deterministic(scheme):
    sim1, _ = run_synthetic(scheme, trace=True)
    sim2, _ = run_synthetic(scheme, trace=True)
    assert sim1.trace.to_jsonl() == sim2.trace.to_jsonl()


def test_phase_breakdown_shape():
    _, res = run_synthetic("suv", trace=True)
    pb = res.phase_breakdown
    assert pb["scheme"] == "suv"
    iso = pb["isolation"]
    assert iso["windows"] == iso["committed"] + iso["aborted"]
    assert iso["committed"] == res.commits
    assert iso["aborted"] == res.aborts
    assert iso["open_cycles_max"] >= iso["open_cycles_mean"] > 0
    assert set(pb["latency"]) == {"window", "commit", "abort",
                                  "table_lookup"}
    assert pb["latency"]["commit"]["count"] == res.commits
    assert pb["kernel"]["events"] == res.events_executed
    assert pb["kernel"]["peak_queue"] > 0
    assert pb["events"]["recorded"] > 0


def test_phase_breakdown_present_without_event_tracing():
    _, res = run_synthetic("suv")
    pb = res.phase_breakdown
    assert pb["isolation"]["windows"] > 0
    assert pb["events"]["recorded"] == 0


def test_phase_breakdown_survives_simresult_roundtrip():
    from repro.simulator import SimResult

    _, res = run_synthetic("suv", trace=True)
    again = SimResult.from_json(res.to_json())
    assert again.phase_breakdown == res.phase_breakdown


def test_tx_events_balanced():
    sim, res = run_synthetic("logtm-se", trace=True)
    kinds = [row["kind"] for row in sim.trace.iter_events()]
    begins = kinds.count("tx_begin")
    ends = kinds.count("tx_commit") + kinds.count("tx_abort")
    assert begins == ends == res.commits + res.aborts


def test_dyntm_propagates_tracer_to_sub_vms():
    sim, _ = run_synthetic("dyntm+suv", trace=True)
    assert sim.scheme.eager.trace is sim.trace
    assert sim.scheme.lazy.trace is sim.trace


def test_scheme_specific_events_present():
    sim, _ = run_synthetic("logtm-se", trace=True)
    kinds = {row["kind"] for row in sim.trace.iter_events()}
    assert "log_walk" in kinds
    sim, _ = run_synthetic("fastm", trace=True)
    kinds = {row["kind"] for row in sim.trace.iter_events()}
    assert "flash_abort" in kinds
    sim, _ = run_synthetic("suv", trace=True)
    kinds = {row["kind"] for row in sim.trace.iter_events()}
    assert "sig_test" in kinds and "pool_alloc" in kinds
    sim, _ = run_synthetic("lazy", trace=True)
    kinds = {row["kind"] for row in sim.trace.iter_events()}
    assert "publish" in kinds


# -- exports -----------------------------------------------------------


def test_jsonl_export_parses_line_per_event(tmp_path):
    sim, res = run_synthetic("suv", trace=True)
    path = tmp_path / "trace.jsonl"
    sim.trace.write_jsonl(path)
    lines = path.read_text().splitlines()
    assert len(lines) == res.phase_breakdown["events"]["recorded"]
    for line in lines[:20]:
        row = json.loads(line)
        assert row["kind"] in EVENT_KINDS
        assert row["ts"] >= 0


def test_chrome_trace_spans_balanced(tmp_path):
    sim, _ = run_synthetic("suv", trace=True)
    path = tmp_path / "trace.json"
    sim.trace.write_chrome_trace(path)
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    begins = sum(1 for e in events if e["ph"] == "B")
    ends = sum(1 for e in events if e["ph"] == "E")
    assert begins == ends > 0
    # core -> tid mapping present on the duration events
    assert all("tid" in e for e in events if e["ph"] in "BE")


def test_single_tx_window_accounting():
    def thread():
        def body():
            yield Write(0x100, 5)
        yield Tx(body)

    sim = Simulator(SimConfig(n_cores=2), scheme="suv", trace=True)
    res = sim.run([thread])
    iso = res.phase_breakdown["isolation"]
    assert iso == {
        "windows": 1,
        "committed": 1,
        "aborted": 0,
        "open_cycles_total": iso["open_cycles_total"],
        "open_cycles_max": iso["open_cycles_total"],
        "open_cycles_mean": float(iso["open_cycles_total"]),
        "commit_processing_cycles": iso["commit_processing_cycles"],
        "abort_processing_cycles": 0,
    }
    assert iso["open_cycles_total"] > 0
    kinds = [row["kind"] for row in sim.trace.iter_events()]
    assert kinds.count(TX_BEGIN) == 1 and kinds.count(TX_COMMIT) == 1
