"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngStreams, _stable_key


def test_same_seed_same_stream():
    a = RngStreams(42).stream("workload").integers(0, 1 << 30, 16)
    b = RngStreams(42).stream("workload").integers(0, 1 << 30, 16)
    assert (a == b).all()


def test_different_names_differ():
    s = RngStreams(42)
    a = s.stream("alpha").integers(0, 1 << 30, 16)
    b = s.stream("beta").integers(0, 1 << 30, 16)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").integers(0, 1 << 30, 16)
    b = RngStreams(2).stream("x").integers(0, 1 << 30, 16)
    assert not (a == b).all()


def test_stream_is_cached_not_restarted():
    s = RngStreams(7)
    first = s.stream("w").integers(0, 100, 4).tolist()
    second = s.stream("w").integers(0, 100, 4).tolist()
    # same generator keeps advancing; a fresh RngStreams reproduces both
    t = RngStreams(7)
    assert t.stream("w").integers(0, 100, 4).tolist() == first
    assert t.stream("w").integers(0, 100, 4).tolist() == second


def test_stable_key_is_stable():
    assert _stable_key("backoff") == _stable_key("backoff")
    assert _stable_key("backoff") != _stable_key("backofg")
