"""Smoke test for the micro-benchmark suite CI publishes."""

import importlib.util
import sys
from pathlib import Path

_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "microbench.py"


def _load():
    spec = importlib.util.spec_from_file_location("microbench", _PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("microbench", module)
    spec.loader.exec_module(module)
    return module


def test_quick_run_covers_every_bench():
    microbench = _load()
    rates = microbench.run_microbench(quick=True)
    assert set(rates) == {name for name, _fn, _ops in microbench.BENCHES}
    assert all(rate > 0 for rate in rates.values())


def test_main_json_out(tmp_path, capsys):
    import json

    microbench = _load()
    out = tmp_path / "MICROBENCH.json"
    rc = microbench.main(["--quick", "--json", "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema_version"] == 1
    assert doc["quick"] is True
    assert json.loads(capsys.readouterr().out)["ops_per_s"] == doc["ops_per_s"]
