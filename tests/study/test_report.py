"""STUDY documents: aggregation, artifacts, rendering and comparison.

Built on synthetic :class:`RunOutcome` values so every aggregation rule
(sum over seeds, max pool high-water, incomplete combos excluded,
failures never silently dropped) is pinned without simulation.
"""

import json

import pytest

from repro.runner import ExperimentSpec, RunOutcome
from repro.simulator import SimResult
from repro.stats.breakdown import Breakdown
from repro.study import (
    STUDY_SCHEMA_VERSION,
    StudySpace,
    build_study_doc,
    compare_studies,
    format_csv,
    format_markdown,
    load_study,
    strip_volatile,
    write_study,
)

SCHEME_A = "redirect+eager+stall+serial"
SCHEME_B = "redirect+eager+greedy+serial"


def result(cycles, aborts=0, pool=0):
    return SimResult(
        scheme="x", total_cycles=cycles, breakdown=Breakdown(),
        per_core=[], commits=1, aborts=aborts, tx_attempts=1 + aborts,
        scheme_stats={"pool_high_water": pool} if pool else {},
        memory={}, events_executed=1,
    )


def outcome(workload, scheme, seed, res=None, error=None):
    spec = ExperimentSpec(workload=workload, scheme=scheme, seed=seed,
                          scale="tiny")
    if error:
        return RunOutcome(spec=spec, error=error, error_type="RunFailed")
    return RunOutcome(spec=spec, result=res)


def space(**kw):
    kw.setdefault("workloads", ("starve",))
    kw.setdefault("vms", ("redirect",))
    kw.setdefault("cds", ("eager",))
    kw.setdefault("resolutions", ("stall", "greedy"))
    return StudySpace(**kw)


class TestBuildStudyDoc:
    def test_sums_cycles_and_aborts_over_seeds_maxes_pool(self):
        sp = space(seeds=(1, 2))
        doc = build_study_doc(sp, [
            outcome("starve", SCHEME_A, 1, result(100, 2, pool=7)),
            outcome("starve", SCHEME_A, 2, result(50, 3, pool=4)),
            outcome("starve", SCHEME_B, 1, result(60, 0)),
            outcome("starve", SCHEME_B, 2, result(60, 0)),
        ])
        ranking = doc["per_workload"]["starve"]["ranking"]
        by = {e["scheme"]: e for e in ranking}
        assert by[SCHEME_A]["cycles"] == 150
        assert by[SCHEME_A]["aborts"] == 5
        assert by[SCHEME_A]["pool_high_water"] == 7  # max, not sum
        assert doc["per_workload"]["starve"]["best"] == SCHEME_B

    def test_failed_seed_excludes_the_combo_and_reports_it(self):
        sp = space(seeds=(1, 2))
        doc = build_study_doc(sp, [
            outcome("starve", SCHEME_A, 1, result(1)),
            outcome("starve", SCHEME_A, 2, error="boom"),
            outcome("starve", SCHEME_B, 1, result(99)),
            outcome("starve", SCHEME_B, 2, result(99)),
        ])
        schemes = [e["scheme"]
                   for e in doc["per_workload"]["starve"]["ranking"]]
        assert schemes == [SCHEME_B]  # partial sum must not rank
        assert len(doc["failures"]) == 1
        assert doc["failures"][0]["error_type"] == "RunFailed"

    def test_front_and_rank_annotations(self):
        doc = build_study_doc(space(), [
            outcome("starve", SCHEME_A, 1, result(100, 0, 0)),
            outcome("starve", SCHEME_B, 1, result(50, 9, 0)),
        ])
        section = doc["per_workload"]["starve"]
        assert set(section["pareto_front"]) == {SCHEME_A, SCHEME_B}
        assert [e["rank"] for e in section["ranking"]] == [1, 2]
        assert all(e["on_front"] for e in section["ranking"])

    def test_workload_with_no_outcomes_is_present_but_empty(self):
        doc = build_study_doc(space(workloads=("starve", "ssca2")), [
            outcome("starve", SCHEME_A, 1, result(1)),
        ])
        assert doc["per_workload"]["ssca2"]["ranking"] == []
        assert doc["per_workload"]["ssca2"]["best"] is None

    def test_doc_shape(self):
        doc = build_study_doc(space(), [
            outcome("starve", SCHEME_A, 1, result(1)),
        ])
        assert doc["schema_version"] == STUDY_SCHEMA_VERSION
        assert doc["kind"] == "STUDY"
        assert doc["space"]["combos"] == 2
        assert "dominated_axis_values" in doc
        json.dumps(doc)  # JSON-safe throughout


class TestArtifacts:
    def _doc(self):
        return build_study_doc(space(), [
            outcome("starve", SCHEME_A, 1, result(100, 1, 2)),
            outcome("starve", SCHEME_B, 1, result(50)),
        ])

    def test_write_load_roundtrip(self, tmp_path):
        path = write_study(self._doc(), tmp_path, date="2026-08-07")
        assert path.name == "STUDY_2026-08-07.json"
        assert load_study(path)["kind"] == "STUDY"

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "STUDY_x.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError, match="schema_version"):
            load_study(path)

    def test_compare_ignores_volatile_sections(self):
        a, b = self._doc(), self._doc()
        b["provenance"] = {"git_revision": "different"}
        b["campaign"] = {"wall_s": 123.0}
        assert compare_studies(a, b) == []

    def test_compare_flags_analysis_differences(self):
        a, b = self._doc(), self._doc()
        b["per_workload"]["starve"]["best"] = SCHEME_A
        problems = compare_studies(a, b)
        assert problems and "per_workload" in problems[0]

    def test_compare_flags_missing_sections(self):
        a, b = self._doc(), self._doc()
        del b["dominated_axis_values"]
        assert any("missing from current" in p for p in compare_studies(a, b))

    def test_strip_volatile(self):
        stripped = strip_volatile(self._doc())
        assert "provenance" not in stripped and "campaign" not in stripped
        assert "per_workload" in stripped

    def test_markdown_renders_rankings_and_fronts(self):
        text = format_markdown(self._doc())
        assert "## starve" in text
        assert SCHEME_B in text and SCHEME_A in text
        assert "Pareto front" in text

    def test_csv_has_one_row_per_workload_scheme(self):
        lines = format_csv(self._doc()).strip().splitlines()
        assert lines[0].startswith("workload,rank,scheme,vm,cd")
        assert len(lines) == 1 + 2
        assert lines[1].split(",")[2] == SCHEME_B  # rank 1 first
