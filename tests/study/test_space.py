"""StudySpace expansion: legality filtering, matrix wiring, describe."""

import pytest

from repro.errors import IncompatiblePolicyError
from repro.htm.policy import (
    ARBITRATION_AXIS,
    CD_AXIS,
    RESOLUTION_AXIS,
    VM_AXIS,
    legal_combinations,
)
from repro.study import StudySpace


def test_default_space_is_the_full_legal_space():
    space = StudySpace(workloads=("starve",))
    assert space.vms == VM_AXIS
    assert space.cds == CD_AXIS
    assert space.resolutions == RESOLUTION_AXIS
    assert space.arbitrations == ARBITRATION_AXIS
    assert len(space.combos()) == len(legal_combinations())


def test_axis_filters_slice_the_legal_space():
    space = StudySpace(
        workloads=("starve",), vms=("redirect",), cds=("eager",),
        resolutions=("stall", "greedy"),
    )
    combos = space.combos()
    # eager is serial-only: redirect × eager × {stall, greedy} × serial
    assert len(combos) == 2
    assert all(c.vm == "redirect" and c.cd == "eager" for c in combos)


def test_illegal_slices_are_dropped_not_raised():
    # lazy excludes undo; the cross product contains only illegal pairs
    # until redirect joins the vm filter
    space = StudySpace(workloads=("starve",), vms=("undo", "redirect"),
                       cds=("lazy",), arbitrations=("serial",))
    assert {c.vm for c in space.combos()} == {"redirect"}


def test_empty_space_raises_typed():
    space = StudySpace(workloads=("starve",), vms=("undo",), cds=("lazy",))
    with pytest.raises(IncompatiblePolicyError, match="empty study space"):
        space.matrix()


def test_unknown_axis_value_raises_typed_with_choices():
    with pytest.raises(IncompatiblePolicyError, match="choose from"):
        StudySpace(workloads=("starve",), resolutions=("gredy",))


def test_specs_cover_workloads_x_combos_x_seeds():
    space = StudySpace(
        workloads=("starve", "ssca2"), seeds=(1, 2),
        vms=("redirect",), cds=("eager",), resolutions=("stall",),
    )
    specs = space.specs()
    assert len(specs) == 2 * 1 * 2
    assert {s.workload for s in specs} == {"starve", "ssca2"}
    assert {s.seed for s in specs} == {1, 2}
    assert all(s.scheme == "redirect+eager+stall+serial" for s in specs)


def test_axis_filters_dedup_but_keep_order():
    space = StudySpace(workloads=("starve",),
                       resolutions=("greedy", "stall", "greedy"))
    assert space.resolutions == ("greedy", "stall")


def test_describe_is_json_safe_and_complete():
    import json

    space = StudySpace(workloads=("starve",), vms=("redirect",))
    desc = space.describe()
    json.dumps(desc)
    assert desc["axes"]["vm"] == ["redirect"]
    assert desc["combos"] == len(space.combos())
    assert desc["seeds"] == [1]
