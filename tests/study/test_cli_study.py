"""``repro study`` / ``study report`` / ``study compare`` end to end.

The sweeps here use narrow axis filters so each test runs a handful of
tiny simulations, but they exercise the full path: CLI parsing → space
expansion → runner → aggregation → artifact → re-render → compare.
"""

import json

from repro.cli import main

SLICE = ["--vms", "redirect", "--cds", "eager", "--resolutions",
         "stall,greedy", "--no-cache", "--jobs", "1", "--quiet"]


def run_study(tmp_path, name, extra=()):
    out = tmp_path / name
    rc = main(["study", "--workloads", "starve", "--seed", "1",
               "--out", str(out), "--date", "t", *SLICE, *extra])
    return rc, out / "STUDY_t.json"


def test_study_runs_and_writes_artifact(tmp_path, capsys):
    rc, path = run_study(tmp_path, "a")
    assert rc == 0
    assert "Design-space study" in capsys.readouterr().out
    doc = json.loads(path.read_text())
    assert doc["kind"] == "STUDY"
    section = doc["per_workload"]["starve"]
    assert len(section["ranking"]) == 2
    assert section["pareto_front"]
    assert not doc["failures"]


def test_study_workloads_accepts_comma_separated(tmp_path, capsys):
    out = tmp_path / "c"
    rc = main(["study", "--workloads", "starve,ssca2", "--seed", "1",
               "--out", str(out), "--date", "t", *SLICE])
    assert rc == 0
    capsys.readouterr()
    doc = json.loads((out / "STUDY_t.json").read_text())
    assert set(doc["per_workload"]) == {"starve", "ssca2"}


def test_study_is_deterministic_across_runs(tmp_path, capsys):
    _, a = run_study(tmp_path, "a")
    _, b = run_study(tmp_path, "b")
    capsys.readouterr()
    assert main(["study", "compare", str(a), str(b)]) == 0
    assert "identical" in capsys.readouterr().out


def test_study_compare_flags_differences(tmp_path, capsys):
    _, a = run_study(tmp_path, "a")
    doc = json.loads(a.read_text())
    doc["per_workload"]["starve"]["best"] = "tampered"
    b = tmp_path / "b.json"
    b.write_text(json.dumps(doc))
    capsys.readouterr()
    assert main(["study", "compare", str(a), str(b)]) == 1
    assert "difference" in capsys.readouterr().out


def test_study_report_markdown_and_csv(tmp_path, capsys):
    _, path = run_study(tmp_path, "a")
    capsys.readouterr()
    assert main(["study", "report", str(path)]) == 0
    assert "Pareto front" in capsys.readouterr().out
    assert main(["study", "report", str(path), "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("workload,rank,scheme")


def test_study_json_flag_prints_document(tmp_path, capsys):
    rc, _ = run_study(tmp_path, "a", extra=["--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema_version"] == 1


def test_study_rejects_unknown_workload(tmp_path, capsys):
    rc = main(["study", "--workloads", "nope", "--seed", "1",
               "--out", str(tmp_path), *SLICE])
    assert rc == 2
    assert "unknown workload" in capsys.readouterr().err


def test_study_rejects_empty_space(tmp_path, capsys):
    rc = main(["study", "--workloads", "starve", "--vms", "undo",
               "--cds", "lazy", "--out", str(tmp_path), "--no-cache",
               "--jobs", "1", "--quiet"])
    assert rc == 2
    assert "empty study space" in capsys.readouterr().err


def test_study_cache_and_resume_wiring(tmp_path, capsys):
    out = tmp_path / "a"
    args = ["study", "--workloads", "starve", "--seed", "1",
            "--out", str(out), "--date", "t",
            "--vms", "redirect", "--cds", "eager",
            "--resolutions", "stall",
            "--cache-dir", str(tmp_path / "cache"),
            "--resume", str(tmp_path / "j.journal"),
            "--jobs", "1", "--quiet"]
    assert main(args) == 0
    doc1 = json.loads((out / "STUDY_t.json").read_text())
    assert main(args) == 0  # resumed: journal satisfied from cache
    capsys.readouterr()
    doc2 = json.loads((out / "STUDY_t.json").read_text())
    assert doc2["campaign"]["resumed"] >= 1
    assert doc1["per_workload"] == doc2["per_workload"]
