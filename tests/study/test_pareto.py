"""Unit tests for ranking, Pareto fronts and dominated-axis detection.

All on synthetic :class:`StudyPoint` values — no simulation — so the
analysis layer's contracts are pinned independently of scheme
behaviour.
"""

import pytest

from repro.study import (
    StudyPoint,
    dominated_axis_values,
    dominates,
    pareto_front,
    rank_points,
)


def pt(scheme, cycles, aborts=0, pool=0):
    return StudyPoint(
        scheme=scheme, cycles=cycles, aborts=aborts, pool_high_water=pool
    )


A = "redirect+eager+stall+serial"
B = "redirect+lazy+stall+width2"
C = "undo+eager+greedy+serial"
D = "buffer+lazy+karma+width4"


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates(pt(A, 10, 1, 1), pt(B, 20, 2, 2))

    def test_better_on_one_equal_elsewhere(self):
        assert dominates(pt(A, 10, 1, 1), pt(B, 10, 1, 2))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(pt(A, 10, 1, 1), pt(B, 10, 1, 1))

    def test_tradeoff_is_incomparable(self):
        fast_aborty = pt(A, 10, 9, 1)
        slow_clean = pt(B, 20, 0, 1)
        assert not dominates(fast_aborty, slow_clean)
        assert not dominates(slow_clean, fast_aborty)

    def test_not_reflexive_or_symmetric(self):
        a, b = pt(A, 10, 1, 1), pt(B, 20, 2, 2)
        assert not dominates(a, a)
        assert dominates(a, b) and not dominates(b, a)


class TestRanking:
    def test_orders_by_cycles_then_aborts_then_pool(self):
        pts = [pt(A, 20, 0, 0), pt(B, 10, 5, 0), pt(C, 10, 1, 9),
               pt(D, 10, 1, 2)]
        assert [p.scheme for p in rank_points(pts)] == [D, C, B, A]

    def test_name_breaks_exact_ties_deterministically(self):
        pts = [pt(B, 10, 1, 1), pt(A, 10, 1, 1)]
        assert [p.scheme for p in rank_points(pts)] == sorted([A, B])

    def test_empty(self):
        assert rank_points([]) == []


class TestParetoFront:
    def test_single_point_is_its_own_front(self):
        assert pareto_front([pt(A, 10)]) == [pt(A, 10)]

    def test_dominated_points_drop(self):
        front = pareto_front([pt(A, 10, 0, 0), pt(B, 20, 1, 1)])
        assert [p.scheme for p in front] == [A]

    def test_tradeoffs_all_stay(self):
        pts = [pt(A, 10, 9, 0), pt(B, 20, 0, 0), pt(C, 15, 5, 0)]
        assert {p.scheme for p in pareto_front(pts)} == {A, B, C}

    def test_duplicate_metrics_both_stay(self):
        pts = [pt(A, 10, 1, 1), pt(B, 10, 1, 1), pt(C, 30, 9, 9)]
        assert {p.scheme for p in pareto_front(pts)} == {A, B}

    def test_front_is_in_ranking_order(self):
        pts = [pt(B, 20, 0, 0), pt(A, 10, 9, 0)]
        assert [p.scheme for p in pareto_front(pts)] == [A, B]

    def test_front_never_contains_a_dominated_pair(self):
        pts = [pt(s, c, a, p) for s, c, a, p in [
            (A, 10, 4, 2), (B, 12, 3, 1), (C, 10, 4, 3), (D, 9, 9, 9)]]
        front = pareto_front(pts)
        for x in front:
            assert not any(dominates(y, x) for y in front)


class TestAxes:
    def test_point_exposes_its_axes(self):
        assert pt(D, 1).axes == {
            "vm": "buffer", "cd": "lazy",
            "resolution": "karma", "arbitration": "width4",
        }

    def test_as_dict_flattens_axes_and_objectives(self):
        d = pt(A, 10, 2, 3).as_dict()
        assert d["scheme"] == A and d["vm"] == "redirect"
        assert (d["cycles"], d["aborts"], d["pool_high_water"]) == (10, 2, 3)

    def test_non_composed_name_raises(self):
        with pytest.raises(ValueError, match="not a composed scheme"):
            pt("suv", 1).axes


class TestDominatedAxisValues:
    def test_value_on_no_front_is_reported(self):
        fronts = {"w1": [pt(A, 1)], "w2": [pt(C, 1)]}
        swept = {"vm": ["redirect", "undo", "flash"],
                 "resolution": ["stall", "greedy"]}
        dead = dominated_axis_values(fronts, swept)
        assert dead["vm"] == ["flash"]
        assert dead["resolution"] == []

    def test_one_front_appearance_clears_a_value(self):
        fronts = {"w1": [pt(A, 1)], "w2": [pt(B, 1), pt(D, 9)]}
        dead = dominated_axis_values(
            fronts, {"arbitration": ["serial", "width2", "width4"]}
        )
        assert dead["arbitration"] == []

    def test_empty_fronts_condemn_everything(self):
        dead = dominated_axis_values({}, {"cd": ["eager", "lazy"]})
        assert dead["cd"] == ["eager", "lazy"]
