"""Tests for ExperimentSpec and RunMatrix."""

import pytest

from repro.runner import ExperimentSpec, RunMatrix


def test_spec_is_hashable_and_usable_as_dict_key():
    a = ExperimentSpec("genome")
    b = ExperimentSpec("genome")
    assert a == b
    assert {a: 1}[b] == 1


def test_overrides_freeze_dict_and_tuple_equally():
    via_dict = ExperimentSpec(
        "genome", config_overrides={"redirect.l1_entries": 64, "l2.latency": 5}
    )
    via_tuple = ExperimentSpec(
        "genome",
        config_overrides=(("l2.latency", 5), ("redirect.l1_entries", 64)),
    )
    assert via_dict == via_tuple
    assert via_dict.spec_hash() == via_tuple.spec_hash()


def test_spec_hash_is_stable_and_seed_sensitive():
    spec = ExperimentSpec("genome", scheme="suv", seed=3)
    assert spec.spec_hash() == ExperimentSpec("genome", scheme="suv", seed=3).spec_hash()
    assert spec.spec_hash() != spec.with_(seed=4).spec_hash()


def test_non_scalar_override_rejected():
    with pytest.raises(TypeError):
        ExperimentSpec("genome", config_overrides={"redirect.l1_entries": [64]})


def test_bad_scale_rejected():
    with pytest.raises(ValueError):
        ExperimentSpec("genome", scale="enormous")


def test_build_config_applies_overrides_and_knobs():
    spec = ExperimentSpec(
        "genome",
        cores=8,
        resolution="abort_requester",
        stagger=128,
        config_overrides={"redirect.l1_entries": 64, "signature.bits": 256},
    )
    config = spec.build_config()
    assert config.n_cores == 8
    assert config.htm.resolution == "abort_requester"
    assert config.htm.start_stagger == 128
    assert config.redirect.l1_entries == 64
    assert config.signature.bits == 256


def test_spec_policy_kwarg_is_deprecated_but_works():
    with pytest.warns(DeprecationWarning):
        spec = ExperimentSpec("genome", policy="abort")
    assert spec.resolution == "abort_requester"
    assert spec.policy == ""
    # the shim normalizes, so old and new spellings hash identically
    with pytest.warns(DeprecationWarning):
        old = ExperimentSpec("genome", policy="abort_requester")
    assert old.spec_hash() == spec.spec_hash()
    assert spec.spec_hash() == ExperimentSpec(
        "genome", resolution="abort_requester"
    ).spec_hash()


def test_build_config_rejects_unknown_paths():
    with pytest.raises(ValueError):
        ExperimentSpec(
            "genome", config_overrides={"nosuch.field": 1}
        ).build_config()
    with pytest.raises(ValueError):
        ExperimentSpec(
            "genome", config_overrides={"redirect.nosuch": 1}
        ).build_config()


def test_spec_dict_roundtrip():
    spec = ExperimentSpec(
        "genome",
        scheme="fastm",
        seed=9,
        config_overrides={"redirect.l1_entries": 64},
        workload_kwargs={"n_accounts": 32},
    )
    again = ExperimentSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.spec_hash() == spec.spec_hash()


def test_matrix_expands_workload_major():
    matrix = RunMatrix(
        workloads=("genome", "intruder"),
        schemes=("logtm-se", "suv"),
        seeds=(1, 2),
    )
    specs = matrix.specs()
    assert len(matrix) == len(specs) == 8
    assert [s.workload for s in specs[:4]] == ["genome"] * 4
    assert specs[0].scheme == "logtm-se" and specs[0].seed == 1
    assert specs[1].seed == 2
    assert specs[2].scheme == "suv"
    assert len(set(specs)) == 8


def test_matrix_propagates_run_knobs():
    matrix = RunMatrix(
        workloads=("genome",), verify=False, max_events=123, staggers=(7,)
    )
    (spec,) = matrix.specs()
    assert spec.verify is False
    assert spec.max_events == 123
    assert spec.stagger == 7


def test_fault_plan_and_check_affect_hash():
    base = ExperimentSpec("genome")
    assert base.spec_hash() != base.with_(fault_plan="tx-kill").spec_hash()
    assert base.spec_hash() != base.with_(check=True).spec_hash()


def test_fault_plan_shows_in_label():
    spec = ExperimentSpec("genome", fault_plan="tx-kill")
    assert "faults=tx-kill" in spec.label()
    inline = ExperimentSpec("genome", fault_plan='{"name": "x", "actions": '
                            '[{"kind": "kill_tx", "at_cycle": 1}]}')
    assert "faults=inline" in inline.label()


def test_matrix_fault_plans_axis():
    matrix = RunMatrix(
        workloads=("genome",),
        schemes=("suv",),
        fault_plans=("", "tx-kill"),
        check=True,
    )
    specs = matrix.specs()
    assert len(specs) == 2
    assert [s.fault_plan for s in specs] == ["", "tx-kill"]
    assert all(s.check for s in specs)


def test_fault_fields_roundtrip():
    spec = ExperimentSpec("genome", fault_plan="sig-storm", check=True)
    again = ExperimentSpec.from_dict(spec.to_dict())
    assert again == spec
