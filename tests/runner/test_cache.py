"""Tests for the content-hashed, checksummed on-disk result cache."""

import json

from repro.runner import ExperimentSpec, ResultCache
from repro.runner.cache import result_checksum
from repro.runner.executor import execute_spec

SPEC = ExperimentSpec("ssca2", scheme="suv", scale="tiny", cores=4)


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    result = execute_spec(SPEC)
    cache.put(SPEC, result)
    assert SPEC in cache
    assert len(cache) == 1
    hit = cache.get(SPEC)
    assert hit is not None
    assert hit.to_json() == result.to_json()
    assert cache.hits == 1 and cache.misses == 0


def test_miss_counted(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(SPEC) is None
    assert cache.misses == 1 and cache.hits == 0


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.path_for(SPEC).write_text("{not json")
    assert cache.get(SPEC) is None
    assert not cache.path_for(SPEC).exists()
    assert cache.misses == 1


def test_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put(SPEC, execute_spec(SPEC))
    cache.clear()
    assert len(cache) == 0
    assert SPEC not in cache


# -- integrity checking ----------------------------------------------------
def test_entries_carry_verifiable_checksum(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    path = cache.put(SPEC, execute_spec(SPEC))
    data = json.loads(path.read_text())
    assert data["checksum"] == result_checksum(data["result"])


def test_corrupt_entry_quarantined_not_destroyed(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.path_for(SPEC).write_text("{not json")
    assert cache.get(SPEC) is None
    assert cache.quarantined == 1
    moved = list(cache.quarantine_root.glob("*.json"))
    assert len(moved) == 1  # preserved for post-mortem, never unlinked
    assert moved[0].read_text() == "{not json"


def test_checksum_mismatch_quarantined(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    path = cache.put(SPEC, execute_spec(SPEC))
    data = json.loads(path.read_text())
    data["result"]["total_cycles"] += 1  # silent bit-flip
    path.write_text(json.dumps(data))
    assert cache.get(SPEC) is None
    assert cache.quarantined == 1 and cache.misses == 1


def test_legacy_entry_without_checksum_quarantined(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    path = cache.put(SPEC, execute_spec(SPEC))
    data = json.loads(path.read_text())
    del data["checksum"]
    path.write_text(json.dumps(data))
    assert cache.get(SPEC) is None
    assert cache.quarantined == 1


def test_quarantine_hook_sees_spec_hash_and_reason(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    seen = []
    cache.quarantine_hook = lambda spec_hash, reason: seen.append(
        (spec_hash, reason)
    )
    cache.path_for(SPEC).write_text("{not json")
    cache.get(SPEC)
    assert seen == [(SPEC.spec_hash(), "unreadable JSON")]


def test_verify_audits_whole_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put(SPEC, execute_spec(SPEC))
    other = SPEC.with_(seed=9)
    cache.path_for(other).write_text("{not json")
    report = cache.verify()
    assert report["checked"] == 2 and report["ok"] == 1
    assert report["quarantined"] == [
        {"entry": cache.path_for(other).name, "reason": "unreadable JSON"}
    ]
    # the sound entry survived the audit and still hits
    assert cache.get(SPEC) is not None


def test_quarantine_name_collisions_suffixed(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for _ in range(2):
        cache.path_for(SPEC).write_text("{not json")
        assert cache.get(SPEC) is None
    assert len(list(cache.quarantine_root.iterdir())) == 2


# -- orphaned temp files ---------------------------------------------------
def test_stale_tmp_files_swept_on_init(tmp_path):
    root = tmp_path / "cache"
    root.mkdir()
    (root / "deadbeef0123.tmp").write_text("half-written")
    cache = ResultCache(root)
    assert cache.stale_tmp_removed == 1
    assert not list(root.glob("*.tmp"))
    assert cache.stats()["stale_tmp_removed"] == 1


def test_stats_keys(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert set(cache.stats()) == {
        "hits", "misses", "entries", "quarantined", "stale_tmp_removed"
    }
