"""Tests for the content-hashed on-disk result cache."""

from repro.runner import ExperimentSpec, ResultCache
from repro.runner.executor import execute_spec

SPEC = ExperimentSpec("ssca2", scheme="suv", scale="tiny", cores=4)


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    result = execute_spec(SPEC)
    cache.put(SPEC, result)
    assert SPEC in cache
    assert len(cache) == 1
    hit = cache.get(SPEC)
    assert hit is not None
    assert hit.to_json() == result.to_json()
    assert cache.hits == 1 and cache.misses == 0


def test_miss_counted(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(SPEC) is None
    assert cache.misses == 1 and cache.hits == 0


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.path_for(SPEC).write_text("{not json")
    assert cache.get(SPEC) is None
    assert not cache.path_for(SPEC).exists()
    assert cache.misses == 1


def test_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put(SPEC, execute_spec(SPEC))
    cache.clear()
    assert len(cache) == 0
    assert SPEC not in cache
