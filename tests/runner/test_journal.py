"""Tests for the write-ahead campaign journal."""

import json

import pytest

from repro.errors import CampaignJournalError
from repro.runner import ExperimentSpec
from repro.runner.journal import CampaignJournal, campaign_hash

TINY = ExperimentSpec("ssca2", scheme="suv", scale="tiny", cores=4)
SPECS = [TINY.with_(seed=s) for s in (1, 2, 3)]


def _journal(tmp_path, name="campaign.journal"):
    # fsync off: these tests exercise logic, not storage durability
    return CampaignJournal(tmp_path / name, fsync=False)


# -- basics ----------------------------------------------------------------
def test_campaign_hash_order_independent():
    assert campaign_hash(["a", "b", "c"]) == campaign_hash(["c", "a", "b"])
    assert campaign_hash(["a"]) != campaign_hash(["a", "b"])


def test_begin_then_replay_roundtrip(tmp_path):
    with _journal(tmp_path) as journal:
        prior = journal.begin(SPECS)
        assert prior.sessions == 0 and not prior.specs
        h = SPECS[0].spec_hash()
        journal.record_running(h, attempt=1)
        journal.record_done(h, attempts=1, duration_s=0.5, cached=False,
                            resumed=False, cache_ok=True, result_digest="d1")
    state = CampaignJournal.replay(tmp_path / "campaign.journal")
    assert state.sessions == 1
    assert len(state.specs) == 3  # the pending set was journaled up front
    spec = state.specs[h]
    assert spec.status == "done" and spec.terminal
    assert spec.attempts == 1 and spec.result_digest == "d1"
    assert spec.label == SPECS[0].label()
    # the two never-started specs are "lost" unless the campaign resumes
    assert {s.spec_hash for s in state.lost} == {
        SPECS[1].spec_hash(), SPECS[2].spec_hash()
    }


def test_failed_state_carries_typed_error(tmp_path):
    with _journal(tmp_path) as journal:
        journal.begin(SPECS[:1])
        h = SPECS[0].spec_hash()
        journal.record_running(h, attempt=1)
        journal.record_failed(h, attempts=2, error="boom",
                              error_type="RetryBudgetExhausted")
    state = CampaignJournal.replay(tmp_path / "campaign.journal")
    spec = state.specs[h]
    assert spec.status == "failed" and spec.terminal
    assert spec.error == "boom"
    assert spec.error_type == "RetryBudgetExhausted"
    assert state.failed == [spec] and not state.done


# -- resume semantics ------------------------------------------------------
def test_resume_replays_prior_sessions(tmp_path):
    with _journal(tmp_path) as journal:
        journal.begin(SPECS)
        h = SPECS[0].spec_hash()
        journal.record_done(h, attempts=1, duration_s=0.1, cached=False,
                            resumed=False, cache_ok=True)
    with _journal(tmp_path) as journal:
        prior = journal.begin(SPECS)
    assert prior.sessions == 1
    assert prior.specs[h].status == "done"
    state = CampaignJournal.replay(tmp_path / "campaign.journal")
    assert state.sessions == 2
    # the pending set is written once, not re-written per session
    assert len(state.specs) == 3


def test_resume_with_different_matrix_refused(tmp_path):
    with _journal(tmp_path) as journal:
        journal.begin(SPECS)
    with _journal(tmp_path) as journal:
        with pytest.raises(CampaignJournalError, match="different campaign"):
            journal.begin([TINY.with_(seed=99)])


# -- crash tolerance -------------------------------------------------------
def test_truncated_trailing_line_skipped_and_counted(tmp_path):
    path = tmp_path / "campaign.journal"
    with _journal(tmp_path) as journal:
        journal.begin(SPECS[:1])
    with path.open("a") as stream:
        stream.write('{"event": "spec_done", "spec_ha')  # SIGKILL here
    state = CampaignJournal.replay(path)
    assert state.truncated_lines == 1
    assert state.sessions == 1  # everything before the kill survived


def test_interior_corruption_raises(tmp_path):
    path = tmp_path / "campaign.journal"
    lines = [
        json.dumps({"event": "campaign_begin", "campaign_hash": "x"}),
        "{definitely not json",
        json.dumps({"event": "spec_running", "spec_hash": "h", "attempt": 1}),
    ]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(CampaignJournalError, match="line 2"):
        CampaignJournal.replay(path)


def test_replay_of_missing_file_is_empty(tmp_path):
    state = CampaignJournal.replay(tmp_path / "nope.journal")
    assert not state.specs and state.sessions == 0


# -- the duplicate-completion invariant ------------------------------------
def test_duplicate_completion_detected(tmp_path):
    with _journal(tmp_path) as journal:
        journal.begin(SPECS[:1])
        h = SPECS[0].spec_hash()
        journal.record_done(h, attempts=1, duration_s=0.1, cached=False,
                            resumed=False, cache_ok=True)
        # a second execution-to-completion with the cached copy intact
        journal.record_done(h, attempts=1, duration_s=0.1, cached=False,
                            resumed=False, cache_ok=True)
    state = CampaignJournal.replay(tmp_path / "campaign.journal")
    spec = state.specs[h]
    assert spec.completions == 2
    assert spec.duplicate_completions == 1
    assert state.duplicates == [spec]


def test_cache_hit_is_not_a_completion(tmp_path):
    with _journal(tmp_path) as journal:
        journal.begin(SPECS[:1])
        h = SPECS[0].spec_hash()
        journal.record_done(h, attempts=1, duration_s=0.1, cached=False,
                            resumed=False, cache_ok=True)
        journal.record_done(h, attempts=0, duration_s=0.0, cached=True,
                            resumed=True, cache_ok=True)
    state = CampaignJournal.replay(tmp_path / "campaign.journal")
    spec = state.specs[h]
    assert spec.completions == 1 and spec.duplicate_completions == 0
    assert spec.cached and spec.resumed


def test_quarantine_justifies_reexecution(tmp_path):
    with _journal(tmp_path) as journal:
        journal.begin(SPECS[:1])
        h = SPECS[0].spec_hash()
        journal.record_done(h, attempts=1, duration_s=0.1, cached=False,
                            resumed=False, cache_ok=True)
        journal.record_quarantine(h, reason="checksum mismatch")
        journal.record_done(h, attempts=1, duration_s=0.1, cached=False,
                            resumed=False, cache_ok=True)
    state = CampaignJournal.replay(tmp_path / "campaign.journal")
    spec = state.specs[h]
    assert spec.completions == 2
    assert spec.duplicate_completions == 0  # the quarantine justified it
    assert spec.quarantines == 1


def test_failed_cache_write_justifies_reexecution(tmp_path):
    with _journal(tmp_path) as journal:
        journal.begin(SPECS[:1])
        h = SPECS[0].spec_hash()
        # completion whose cache write did not stick
        journal.record_done(h, attempts=1, duration_s=0.1, cached=False,
                            resumed=False, cache_ok=False)
        journal.record_done(h, attempts=1, duration_s=0.1, cached=False,
                            resumed=False, cache_ok=True)
    state = CampaignJournal.replay(tmp_path / "campaign.journal")
    assert state.specs[h].duplicate_completions == 0


def test_degradation_events_replayed(tmp_path):
    with _journal(tmp_path) as journal:
        journal.begin(SPECS[:1])
        journal.record_degradation({"kind": "pool_breakage", "backoff_s": 0.1})
    state = CampaignJournal.replay(tmp_path / "campaign.journal")
    assert len(state.degradations) == 1
    assert state.degradations[0]["kind"] == "pool_breakage"
