"""Tests for the Runner: caching, timeout, retry, serial fallback."""

import multiprocessing
import os
import time

from repro.runner import ExperimentSpec, ResultCache, Runner
from repro.runner.executor import execute_spec

TINY = ExperimentSpec("ssca2", scheme="suv", scale="tiny", cores=4)


# -- pool workers (module-level so they pickle) --------------------------
def sleepy_worker(spec):
    time.sleep(5)
    return execute_spec(spec).to_json()


def crashy_worker(spec):
    # deterministic crash until the retry seed offset kicks in
    if spec.seed < 1000:
        raise RuntimeError("boom")
    return execute_spec(spec).to_json()


def pool_killing_worker(spec):
    # dies abruptly in pool children, works fine in-process
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return execute_spec(spec).to_json()


def garbage_worker(spec):
    # a mangled payload crossing the process boundary
    return "{definitely not a result"


# -- serial execution -----------------------------------------------------
def test_serial_run_matches_execute_spec():
    outcome = Runner(max_workers=1, retries=0).run_one(TINY)
    assert outcome.ok and not outcome.cached and outcome.attempts == 1
    assert outcome.result.to_json() == execute_spec(TINY).to_json()


def test_serial_failure_reported():
    bad = TINY.with_(workload="ssca2", config_overrides={"nosuch.field": 1})
    outcome = Runner(max_workers=1, retries=0).run_one(bad)
    assert not outcome.ok
    assert "ValueError" in outcome.error


# -- caching --------------------------------------------------------------
def test_cached_result_identical_to_fresh(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    runner = Runner(max_workers=1, cache=cache, retries=0)
    fresh = runner.run_one(TINY)
    hit = runner.run_one(TINY)
    assert not fresh.cached and hit.cached
    assert hit.result.to_json() == fresh.result.to_json()
    assert cache.hits == 1


def test_cache_shared_across_runners(tmp_path):
    Runner(max_workers=1, cache=tmp_path / "c", retries=0).run_one(TINY)
    outcome = Runner(max_workers=1, cache=tmp_path / "c", retries=0).run_one(TINY)
    assert outcome.cached


# -- pool path ------------------------------------------------------------
def test_pool_runs_specs_in_order():
    specs = [TINY.with_(seed=s) for s in (1, 2, 3)]
    outcomes = Runner(max_workers=2, retries=0).run(specs)
    assert [o.spec for o in outcomes] == specs
    assert all(o.ok for o in outcomes)
    # parallel (JSON round-tripped) results match in-process execution
    assert outcomes[0].result.to_json() == execute_spec(specs[0]).to_json()


def test_timeout_reported_as_error():
    runner = Runner(
        max_workers=2, timeout=0.2, retries=0, worker=sleepy_worker
    )
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(not o.ok for o in outcomes)
    assert all("timed out" in o.error for o in outcomes)


def test_crash_retried_with_offset_seed():
    runner = Runner(
        max_workers=2, retries=1, retry_seed_offset=1000, worker=crashy_worker
    )
    outcomes = runner.run([TINY.with_(seed=3), TINY.with_(seed=4)])
    for outcome in outcomes:
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.executed_spec.seed == outcome.spec.seed + 1000


def test_retries_exhausted_reports_error():
    runner = Runner(
        max_workers=2, retries=1, retry_seed_offset=1, worker=crashy_worker
    )
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(not o.ok for o in outcomes)
    assert all("boom" in o.error for o in outcomes)


# -- failure paths: timeouts, retry accounting, typed exhaustion ----------
def test_timeout_retry_accounting():
    runner = Runner(
        max_workers=2, timeout=0.2, retries=1, worker=sleepy_worker
    )
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    for outcome in outcomes:
        assert not outcome.ok
        assert outcome.attempts == 2  # the initial try plus one retry
        assert outcome.error_type == "RetryBudgetExhausted"
        assert "timed out" in outcome.error


def test_pool_retry_seed_offset_accounting():
    # chunked path: attempt k runs with seed + (k-1) * offset, so the
    # third attempt (3 + 2*500 = 1003) clears crashy_worker's threshold
    with Runner(
        max_workers=2, retries=2, retry_seed_offset=500,
        worker=crashy_worker, chunk_size=1,
    ) as runner:
        outcomes = runner.run([TINY.with_(seed=3), TINY.with_(seed=4)])
    for outcome in outcomes:
        assert outcome.ok
        assert outcome.attempts == 3
        assert outcome.executed_spec.seed == outcome.spec.seed + 1000


def test_exhaustion_is_typed():
    runner = Runner(
        max_workers=1, retries=1, retry_seed_offset=1, worker=crashy_worker
    )
    outcome = runner.run_one(TINY.with_(seed=1))
    assert not outcome.ok
    assert outcome.error_type == "RetryBudgetExhausted"
    assert "retry budget exhausted" in outcome.error
    assert "boom" in outcome.error  # the last underlying error rides along


def test_corrupt_payload_is_retried_not_fatal():
    # a worker returning garbage must not crash the parent campaign
    runner = Runner(max_workers=2, retries=0, worker=garbage_worker)
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    for outcome in outcomes:
        assert not outcome.ok
        assert outcome.error_type == "RetryBudgetExhausted"
        assert "corrupt result payload" in outcome.error


# -- graceful degradation to serial ---------------------------------------
def test_broken_pool_falls_back_to_serial():
    runner = Runner(max_workers=2, retries=0, worker=pool_killing_worker)
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(o.ok for o in outcomes)
    assert runner.serial_fallbacks >= 1


def test_pool_breakage_supervision_recorded():
    runner = Runner(
        max_workers=2, retries=0, worker=pool_killing_worker,
        backoff_base_s=0.0,
    )
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(o.ok for o in outcomes)  # the specs still got done
    # every pool dispatch broke: recycled until the circuit opened
    assert runner.pool_breakages == runner.breaker_threshold
    assert runner.circuit_open
    kinds = [e["kind"] for e in runner.degradation_events]
    assert kinds.count("pool_breakage") == runner.pool_breakages
    assert "circuit_open" in kinds
    # every breakage reported how many specs it left unresolved
    assert all(
        e["unresolved"] >= 1 for e in runner.degradation_events
        if e["kind"] == "pool_breakage"
    )


def test_breaker_threshold_one_opens_immediately():
    runner = Runner(
        max_workers=2, retries=0, worker=pool_killing_worker,
        breaker_threshold=1, backoff_base_s=0.0,
    )
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(o.ok for o in outcomes)
    assert runner.pool_breakages == 1 and runner.circuit_open
    assert runner.serial_fallbacks == 1


def test_open_circuit_skips_pool_on_later_runs():
    with Runner(
        max_workers=2, retries=0, worker=pool_killing_worker,
        breaker_threshold=1, backoff_base_s=0.0,
    ) as runner:
        runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
        assert runner.circuit_open
        outcomes = runner.run([TINY.with_(seed=5), TINY.with_(seed=6)])
        assert all(o.ok for o in outcomes)
        assert runner._pool is None  # degraded: no pool was spawned
        assert runner.pool_breakages == 1  # no new breakages either


def test_backoff_jitter_deterministic_per_seed():
    a = Runner(supervision_seed=7)
    b = Runner(supervision_seed=7)
    c = Runner(supervision_seed=8)
    rolls_a = [a._jitter(n) for n in range(1, 4)]
    assert rolls_a == [b._jitter(n) for n in range(1, 4)]
    assert rolls_a != [c._jitter(n) for n in range(1, 4)]
    assert all(0.0 <= r < 1.0 for r in rolls_a)


def test_cache_put_failure_tolerated(tmp_path):
    cache = ResultCache(tmp_path / "cache")

    def failing_put(spec, result):
        raise OSError("disk full")

    cache.put = failing_put
    runner = Runner(max_workers=1, retries=0, cache=cache)
    outcome = runner.run_one(TINY)
    assert outcome.ok  # the result survived the failed write
    assert runner.cache_put_failures == 1
    assert runner.degradation_events[0]["kind"] == "cache_put_failure"


def test_pool_creation_failure_falls_back_to_serial(monkeypatch):
    def no_pool(self, n_tasks):
        raise OSError("no processes here")

    monkeypatch.setattr(Runner, "_make_pool", no_pool)
    runner = Runner(max_workers=2, retries=0)
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(o.ok for o in outcomes)
    assert runner.serial_fallbacks == 1


# -- journaled campaigns ---------------------------------------------------
def test_journaled_run_reaches_terminal_states(tmp_path):
    from repro.runner import CampaignJournal

    journal_path = tmp_path / "campaign.journal"
    with Runner(max_workers=1, retries=0, journal=journal_path) as runner:
        runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    state = CampaignJournal.replay(journal_path)
    assert len(state.done) == 2 and not state.lost
    assert state.sessions == 1
    for spec_state in state.done:
        assert spec_state.result_digest  # byte-identity audit material


def test_resumed_campaign_satisfied_from_cache(tmp_path):
    from repro.runner import CampaignJournal

    journal_path = tmp_path / "campaign.journal"
    specs = [TINY.with_(seed=1), TINY.with_(seed=2)]
    cache_dir = tmp_path / "cache"
    with Runner(
        max_workers=1, retries=0, cache=cache_dir, journal=journal_path
    ) as runner:
        first = runner.run(specs)
    with Runner(
        max_workers=1, retries=0, cache=cache_dir, journal=journal_path
    ) as runner:
        second = runner.run(specs)
    assert all(o.cached and o.resumed for o in second)
    assert [o.result.to_json() for o in second] == [
        o.result.to_json() for o in first
    ]
    state = CampaignJournal.replay(journal_path)
    assert state.sessions == 2
    assert not state.duplicates  # cache hits are not re-completions


def test_resume_with_different_matrix_refused_by_runner(tmp_path):
    import pytest

    from repro.errors import CampaignJournalError

    journal_path = tmp_path / "campaign.journal"
    with Runner(max_workers=1, retries=0, journal=journal_path) as runner:
        runner.run([TINY.with_(seed=1)])
    with Runner(max_workers=1, retries=0, journal=journal_path) as runner:
        with pytest.raises(CampaignJournalError):
            runner.run([TINY.with_(seed=99)])


def test_journal_records_typed_failures(tmp_path):
    from repro.runner import CampaignJournal

    journal_path = tmp_path / "campaign.journal"
    with Runner(
        max_workers=1, retries=0, worker=crashy_worker, journal=journal_path
    ) as runner:
        runner.run([TINY.with_(seed=1)])
    state = CampaignJournal.replay(journal_path)
    (failed,) = state.failed
    assert failed.error_type == "RetryBudgetExhausted"


# -- artifacts & progress --------------------------------------------------
def test_artifacts_written_per_outcome(tmp_path):
    path = tmp_path / "runs.jsonl"
    runner = Runner(max_workers=1, retries=0, artifacts=path)
    runner.run([TINY, TINY.with_(seed=4)])
    from repro.runner import ArtifactStore

    records = ArtifactStore(path).load()
    assert len(records) == 2
    assert records[0]["spec"]["workload"] == "ssca2"
    assert records[0]["result"]["commits"] >= 0


def test_artifacts_record_provenance(tmp_path):
    path = tmp_path / "runs.jsonl"
    Runner(max_workers=1, retries=0, artifacts=path).run([TINY])
    from repro.runner import ArtifactStore

    record = ArtifactStore(path).load()[0]
    prov = record["provenance"]
    assert prov["python"] and prov["repro_version"]
    # inside this repo the revision resolves; outside it would be None
    assert "git_revision" in prov and "git_dirty" in prov


def test_progress_callable_sees_every_run():
    lines = []
    runner = Runner(max_workers=1, retries=0, progress=lines.append)
    runner.run([TINY, TINY.with_(seed=4)])
    assert len(lines) == 2
    assert "[2/2]" in lines[1]


# -- warm pool, chunking, streaming ---------------------------------------
def test_warm_pool_reused_across_runs():
    with Runner(max_workers=2, retries=0) as runner:
        runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
        first_pool = runner._pool
        assert first_pool is not None  # kept warm, not shut down
        outcomes = runner.run([TINY.with_(seed=5), TINY.with_(seed=6)])
        assert runner._pool is first_pool
        assert all(o.ok for o in outcomes)
    assert runner._pool is None  # context exit released it


def test_chunked_pool_matches_serial():
    specs = [TINY.with_(seed=s) for s in range(1, 7)]
    serial = [Runner(max_workers=1, retries=0).run_one(s) for s in specs]
    with Runner(max_workers=2, retries=0, chunk_size=3) as runner:
        pooled = runner.run(specs)
    assert [o.result.total_cycles for o in pooled] == [
        o.result.total_cycles for o in serial
    ]


def test_chunked_crash_retried_with_offset_seed():
    with Runner(
        max_workers=2, retries=1, retry_seed_offset=1000,
        worker=crashy_worker, chunk_size=2,
    ) as runner:
        outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(o.ok for o in outcomes)
    assert all(o.attempts == 2 for o in outcomes)
    assert all(o.executed_spec.seed >= 1000 for o in outcomes)


def test_chunk_failure_does_not_take_siblings_down():
    with Runner(
        max_workers=2, retries=0, worker=crashy_worker, chunk_size=2
    ) as runner:
        # seed 2000 succeeds, seed 1 crashes — same chunk
        outcomes = runner.run([TINY.with_(seed=2000), TINY.with_(seed=1)])
    assert outcomes[0].ok
    assert not outcomes[1].ok and "boom" in outcomes[1].error


def test_run_iter_streams_outcomes():
    specs = [TINY.with_(seed=s) for s in (1, 2, 3)]
    with Runner(max_workers=2, retries=0) as runner:
        seen = []
        for outcome in runner.run_iter(specs):
            assert outcome.ok  # resolved by the time it is yielded
            seen.append(outcome.spec.seed)
    assert sorted(seen) == [1, 2, 3]


def test_run_iter_yields_cache_hits_first(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    Runner(max_workers=1, cache=cache, retries=0).run_one(TINY.with_(seed=2))
    with Runner(max_workers=1, cache=cache, retries=0) as runner:
        outcomes = list(runner.run_iter([TINY.with_(seed=2), TINY.with_(seed=9)]))
    assert outcomes[0].cached and outcomes[0].spec.seed == 2
    assert not outcomes[1].cached and outcomes[1].ok
