"""Tests for the Runner: caching, timeout, retry, serial fallback."""

import multiprocessing
import os
import time

from repro.runner import ExperimentSpec, ResultCache, Runner
from repro.runner.executor import execute_spec

TINY = ExperimentSpec("ssca2", scheme="suv", scale="tiny", cores=4)


# -- pool workers (module-level so they pickle) --------------------------
def sleepy_worker(spec):
    time.sleep(5)
    return execute_spec(spec).to_json()


def crashy_worker(spec):
    # deterministic crash until the retry seed offset kicks in
    if spec.seed < 1000:
        raise RuntimeError("boom")
    return execute_spec(spec).to_json()


def pool_killing_worker(spec):
    # dies abruptly in pool children, works fine in-process
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return execute_spec(spec).to_json()


# -- serial execution -----------------------------------------------------
def test_serial_run_matches_execute_spec():
    outcome = Runner(max_workers=1, retries=0).run_one(TINY)
    assert outcome.ok and not outcome.cached and outcome.attempts == 1
    assert outcome.result.to_json() == execute_spec(TINY).to_json()


def test_serial_failure_reported():
    bad = TINY.with_(workload="ssca2", config_overrides={"nosuch.field": 1})
    outcome = Runner(max_workers=1, retries=0).run_one(bad)
    assert not outcome.ok
    assert "ValueError" in outcome.error


# -- caching --------------------------------------------------------------
def test_cached_result_identical_to_fresh(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    runner = Runner(max_workers=1, cache=cache, retries=0)
    fresh = runner.run_one(TINY)
    hit = runner.run_one(TINY)
    assert not fresh.cached and hit.cached
    assert hit.result.to_json() == fresh.result.to_json()
    assert cache.hits == 1


def test_cache_shared_across_runners(tmp_path):
    Runner(max_workers=1, cache=tmp_path / "c", retries=0).run_one(TINY)
    outcome = Runner(max_workers=1, cache=tmp_path / "c", retries=0).run_one(TINY)
    assert outcome.cached


# -- pool path ------------------------------------------------------------
def test_pool_runs_specs_in_order():
    specs = [TINY.with_(seed=s) for s in (1, 2, 3)]
    outcomes = Runner(max_workers=2, retries=0).run(specs)
    assert [o.spec for o in outcomes] == specs
    assert all(o.ok for o in outcomes)
    # parallel (JSON round-tripped) results match in-process execution
    assert outcomes[0].result.to_json() == execute_spec(specs[0]).to_json()


def test_timeout_reported_as_error():
    runner = Runner(
        max_workers=2, timeout=0.2, retries=0, worker=sleepy_worker
    )
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(not o.ok for o in outcomes)
    assert all("timed out" in o.error for o in outcomes)


def test_crash_retried_with_offset_seed():
    runner = Runner(
        max_workers=2, retries=1, retry_seed_offset=1000, worker=crashy_worker
    )
    outcomes = runner.run([TINY.with_(seed=3), TINY.with_(seed=4)])
    for outcome in outcomes:
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.executed_spec.seed == outcome.spec.seed + 1000


def test_retries_exhausted_reports_error():
    runner = Runner(
        max_workers=2, retries=1, retry_seed_offset=1, worker=crashy_worker
    )
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(not o.ok for o in outcomes)
    assert all("boom" in o.error for o in outcomes)


# -- graceful degradation to serial ---------------------------------------
def test_broken_pool_falls_back_to_serial():
    runner = Runner(max_workers=2, retries=0, worker=pool_killing_worker)
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(o.ok for o in outcomes)
    assert runner.serial_fallbacks >= 1


def test_pool_creation_failure_falls_back_to_serial(monkeypatch):
    def no_pool(self, n_tasks):
        raise OSError("no processes here")

    monkeypatch.setattr(Runner, "_make_pool", no_pool)
    runner = Runner(max_workers=2, retries=0)
    outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(o.ok for o in outcomes)
    assert runner.serial_fallbacks == 1


# -- artifacts & progress --------------------------------------------------
def test_artifacts_written_per_outcome(tmp_path):
    path = tmp_path / "runs.jsonl"
    runner = Runner(max_workers=1, retries=0, artifacts=path)
    runner.run([TINY, TINY.with_(seed=4)])
    from repro.runner import ArtifactStore

    records = ArtifactStore(path).load()
    assert len(records) == 2
    assert records[0]["spec"]["workload"] == "ssca2"
    assert records[0]["result"]["commits"] >= 0


def test_artifacts_record_provenance(tmp_path):
    path = tmp_path / "runs.jsonl"
    Runner(max_workers=1, retries=0, artifacts=path).run([TINY])
    from repro.runner import ArtifactStore

    record = ArtifactStore(path).load()[0]
    prov = record["provenance"]
    assert prov["python"] and prov["repro_version"]
    # inside this repo the revision resolves; outside it would be None
    assert "git_revision" in prov and "git_dirty" in prov


def test_progress_callable_sees_every_run():
    lines = []
    runner = Runner(max_workers=1, retries=0, progress=lines.append)
    runner.run([TINY, TINY.with_(seed=4)])
    assert len(lines) == 2
    assert "[2/2]" in lines[1]


# -- warm pool, chunking, streaming ---------------------------------------
def test_warm_pool_reused_across_runs():
    with Runner(max_workers=2, retries=0) as runner:
        runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
        first_pool = runner._pool
        assert first_pool is not None  # kept warm, not shut down
        outcomes = runner.run([TINY.with_(seed=5), TINY.with_(seed=6)])
        assert runner._pool is first_pool
        assert all(o.ok for o in outcomes)
    assert runner._pool is None  # context exit released it


def test_chunked_pool_matches_serial():
    specs = [TINY.with_(seed=s) for s in range(1, 7)]
    serial = [Runner(max_workers=1, retries=0).run_one(s) for s in specs]
    with Runner(max_workers=2, retries=0, chunk_size=3) as runner:
        pooled = runner.run(specs)
    assert [o.result.total_cycles for o in pooled] == [
        o.result.total_cycles for o in serial
    ]


def test_chunked_crash_retried_with_offset_seed():
    with Runner(
        max_workers=2, retries=1, retry_seed_offset=1000,
        worker=crashy_worker, chunk_size=2,
    ) as runner:
        outcomes = runner.run([TINY.with_(seed=1), TINY.with_(seed=2)])
    assert all(o.ok for o in outcomes)
    assert all(o.attempts == 2 for o in outcomes)
    assert all(o.executed_spec.seed >= 1000 for o in outcomes)


def test_chunk_failure_does_not_take_siblings_down():
    with Runner(
        max_workers=2, retries=0, worker=crashy_worker, chunk_size=2
    ) as runner:
        # seed 2000 succeeds, seed 1 crashes — same chunk
        outcomes = runner.run([TINY.with_(seed=2000), TINY.with_(seed=1)])
    assert outcomes[0].ok
    assert not outcomes[1].ok and "boom" in outcomes[1].error


def test_run_iter_streams_outcomes():
    specs = [TINY.with_(seed=s) for s in (1, 2, 3)]
    with Runner(max_workers=2, retries=0) as runner:
        seen = []
        for outcome in runner.run_iter(specs):
            assert outcome.ok  # resolved by the time it is yielded
            seen.append(outcome.spec.seed)
    assert sorted(seen) == [1, 2, 3]


def test_run_iter_yields_cache_hits_first(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    Runner(max_workers=1, cache=cache, retries=0).run_one(TINY.with_(seed=2))
    with Runner(max_workers=1, cache=cache, retries=0) as runner:
        outcomes = list(runner.run_iter([TINY.with_(seed=2), TINY.with_(seed=9)]))
    assert outcomes[0].cached and outcomes[0].spec.seed == 2
    assert not outcomes[1].cached and outcomes[1].ok
