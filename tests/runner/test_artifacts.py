"""Tests for the JSONL artifact store's crash tolerance and reports."""

import json

import pytest

from repro.runner import ArtifactStore, ExperimentSpec
from repro.runner.executor import execute_spec

SPEC = ExperimentSpec("ssca2", scheme="suv", scale="tiny", cores=4)


def test_truncated_trailing_line_skipped_and_counted(tmp_path):
    store = ArtifactStore(tmp_path / "runs.jsonl")
    store.append(SPEC, execute_spec(SPEC))
    with store.path.open("a") as stream:
        stream.write('{"spec_hash": "dead')  # writer killed mid-append
    records = store.load()
    assert len(records) == 1
    assert store.skipped_lines == 1


def test_interior_corruption_still_raises(tmp_path):
    store = ArtifactStore(tmp_path / "runs.jsonl")
    store.path.write_text('{broken\n{"spec_hash": "ok"}\n')
    with pytest.raises(json.JSONDecodeError):
        store.load()


def test_error_type_and_resumed_recorded(tmp_path):
    store = ArtifactStore(tmp_path / "runs.jsonl")
    store.append(SPEC, None, error="boom",
                 error_type="RetryBudgetExhausted", attempts=3)
    store.append(SPEC, execute_spec(SPEC), cached=True, resumed=True)
    records = store.load()
    assert records[0]["error_type"] == "RetryBudgetExhausted"
    assert records[0]["result"] is None
    assert records[1]["resumed"] is True and records[1]["cached"] is True


def test_campaign_report_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path / "runs.jsonl")
    store.append(SPEC, execute_spec(SPEC))
    store.append_report({"total": 1, "ok": 1, "failed": 0})
    assert store.reports() == [{"total": 1, "ok": 1, "failed": 0}]
    runs = store.runs()
    assert len(runs) == 1 and runs[0]["spec_hash"] == SPEC.spec_hash()
