"""Tests for the runner-level chaos harness and its invariant audit.

The acceptance test of the resilience layer lives here: run a matrix
under injected faults, kill the campaign mid-flight, resume it over the
same journal and cache, and prove that no spec was lost, none completed
twice, and the merged results are byte-identical to an uninterrupted
run.
"""

import pytest

from repro.runner import ExperimentSpec
from repro.runner.chaos import (
    CHAOS_PRESETS,
    ChaosCampaignReport,
    ChaosPlan,
    FlakyCache,
    _check_invariants,
    _fire_once,
    chaos_plan,
    chaos_roll,
    run_chaos_campaign,
    write_chaos_report,
)
from repro.runner.journal import JournalState, SpecState

TINY = ExperimentSpec("ssca2", scheme="suv", scale="tiny", cores=4)
SPECS = [TINY.with_(seed=s) for s in (1, 2, 3)]


# -- determinism and once-semantics ---------------------------------------
def test_chaos_roll_deterministic_and_uniform_range():
    a = chaos_roll(7, "spec-a", "crash")
    assert a == chaos_roll(7, "spec-a", "crash")
    assert 0.0 <= a < 1.0
    # seed, key and kind all feed the roll
    assert a != chaos_roll(8, "spec-a", "crash")
    assert a != chaos_roll(7, "spec-b", "crash")
    assert a != chaos_roll(7, "spec-a", "hang")


def test_chaos_plan_presets_and_reseed():
    plan = chaos_plan("crash", seed=42)
    assert plan.crash_rate > 0 and plan.seed == 42
    assert chaos_plan("crash").seed == CHAOS_PRESETS["crash"].seed
    with pytest.raises(ValueError, match="unknown chaos preset"):
        chaos_plan("meteor-strike")


def test_fault_fires_exactly_once_per_spec(tmp_path):
    plan = ChaosPlan(seed=1, crash_rate=1.0)
    assert _fire_once(plan, str(tmp_path), "spec-a", "crash", 1.0)
    # the marker file makes the fault transient: it never fires again
    assert not _fire_once(plan, str(tmp_path), "spec-a", "crash", 1.0)
    # other specs are independent
    assert _fire_once(plan, str(tmp_path), "spec-b", "crash", 1.0)


def test_zero_rate_never_fires(tmp_path):
    plan = ChaosPlan(seed=1)
    assert not _fire_once(plan, str(tmp_path), "spec-a", "crash", 0.0)
    assert not list(tmp_path.iterdir())  # no marker written


def test_flaky_cache_write_fails_once_then_heals(tmp_path):
    from repro.runner.executor import execute_spec

    plan = ChaosPlan(seed=1, cache_fail_rate=1.0)
    markers = tmp_path / "markers"
    markers.mkdir()
    cache = FlakyCache(tmp_path / "cache", plan, markers)
    result = execute_spec(TINY)
    with pytest.raises(OSError, match="injected cache-write failure"):
        cache.put(TINY, result)
    cache.put(TINY, result)  # the fault healed
    assert TINY in cache


# -- the acceptance test: kill, resume, audit ------------------------------
def test_crash_campaign_killed_and_resumed_converges(tmp_path):
    verdict = run_chaos_campaign(
        SPECS, chaos_plan("crash", seed=2), tmp_path / "campaign",
        jobs=2, retries=2, kill_after=1,
    )
    assert verdict.passed, verdict.violations
    assert verdict.invariants == {
        "no_spec_lost": True,
        "no_duplicate_completion": True,
        "resume_converged": True,
        "results_byte_identical": True,
        "failures_typed": True,
    }
    assert verdict.journal_stats["sessions"] == 2  # killed + resumed
    assert verdict.campaign["failed"] == 0


def test_corrupt_campaign_quarantines_and_stays_byte_identical(tmp_path):
    verdict = run_chaos_campaign(
        SPECS, chaos_plan("corrupt", seed=1), tmp_path / "campaign",
        jobs=2, retries=2, kill_after=1,
    )
    assert verdict.passed, verdict.violations
    assert verdict.invariants["results_byte_identical"]


def test_report_written_for_ci(tmp_path):
    import json

    verdict = run_chaos_campaign(
        SPECS[:2], chaos_plan("cache-flaky", seed=1), tmp_path / "campaign",
        jobs=2, retries=2, kill_after=1,
    )
    path = write_chaos_report(verdict, tmp_path / "report.json")
    doc = json.loads(path.read_text())
    assert doc["passed"] == verdict.passed
    assert set(doc["invariants"]) == set(verdict.invariants)
    assert "campaign" in doc and "journal" in doc


# -- the auditor actually catches violations -------------------------------
def _doctored_state(**spec_kwargs):
    state = JournalState(sessions=2)
    spec = SpecState(spec_hash=SPECS[0].spec_hash(), **spec_kwargs)
    state.specs[spec.spec_hash] = spec
    return state


def test_auditor_flags_lost_spec():
    verdict = ChaosCampaignReport(plan="t", seed=0, n_specs=1,
                                  killed_after=1)
    state = _doctored_state(status="running")
    _check_invariants(verdict, SPECS[:1], [], state, {})
    assert not verdict.invariants["no_spec_lost"]
    assert any("spec lost" in v for v in verdict.violations)


def test_auditor_flags_duplicate_completion():
    verdict = ChaosCampaignReport(plan="t", seed=0, n_specs=1,
                                  killed_after=1)
    state = _doctored_state(status="done", completions=2,
                            duplicate_completions=1)
    _check_invariants(verdict, SPECS[:1], [], state, {})
    assert not verdict.invariants["no_duplicate_completion"]
    assert any("completed 2 times" in v for v in verdict.violations)


def test_auditor_flags_unconverged_resume():
    verdict = ChaosCampaignReport(plan="t", seed=0, n_specs=2,
                                  killed_after=1)
    state = _doctored_state(status="done")
    _check_invariants(verdict, SPECS[:2], [], state, {})
    assert not verdict.invariants["resume_converged"]
    assert any("resolved 0 of 2" in v for v in verdict.violations)
