"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.config import SimConfig
from repro.faults import (
    PRESETS,
    FaultAction,
    FaultInjector,
    FaultPlan,
    list_presets,
    parse_plan,
)
from repro.simulator import Simulator
from repro.workloads import make_workload


def run_sim(plan=None, scheme="suv", seed=9, oracle=False, workload="synthetic"):
    program = make_workload(workload, n_threads=4, seed=seed, scale="tiny")
    sim = Simulator(SimConfig(n_cores=4), scheme=scheme, seed=seed,
                    faults=plan, oracle=oracle)
    result = sim.run(program.threads)
    return sim, result, program


# ----------------------------------------------------------------------
# plan model
# ----------------------------------------------------------------------
def test_action_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultAction("meteor_strike", at_cycle=10)


def test_action_rejects_negative_cycle():
    with pytest.raises(ValueError, match="at_cycle"):
        FaultAction("kill_tx", at_cycle=-1)


def test_plan_json_roundtrip():
    plan = PRESETS["jitter"]
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan


def test_parse_plan_empty_and_presets():
    assert parse_plan("") is None
    assert parse_plan(None) is None
    for name in list_presets():
        assert parse_plan(name) is PRESETS[name]


def test_parse_plan_inline_json():
    text = ('{"name": "mine", "actions": '
            '[{"kind": "kill_tx", "at_cycle": 42, "core": 1}]}')
    plan = parse_plan(text)
    assert plan.name == "mine"
    assert plan.actions == (FaultAction("kill_tx", at_cycle=42, core=1),)


def test_parse_plan_rejects_garbage():
    with pytest.raises(ValueError, match="unknown fault plan"):
        parse_plan("not-a-preset")


def test_action_to_dict_omits_defaults():
    d = FaultAction("kill_tx", at_cycle=7).to_dict()
    assert d == {"kind": "kill_tx", "at_cycle": 7}


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_same_seed_same_trace_and_result():
    _, a, _ = run_sim(PRESETS["jitter"])
    _, b, _ = run_sim(PRESETS["jitter"])
    assert a.fault_trace == b.fault_trace
    assert a.fault_trace  # the plan actually fired
    assert a.to_json() == b.to_json()


def test_different_seed_different_outcome():
    _, a, _ = run_sim(PRESETS["jitter"], seed=9)
    _, b, _ = run_sim(PRESETS["jitter"], seed=10)
    assert a.to_json() != b.to_json()


def test_fault_trace_survives_json_roundtrip():
    from repro.simulator import SimResult

    _, res, _ = run_sim(PRESETS["tx-kill"])
    again = SimResult.from_json(res.to_json())
    assert again.fault_trace == res.fault_trace


# ----------------------------------------------------------------------
# individual fault kinds
# ----------------------------------------------------------------------
def test_table_squeeze_shrinks_and_spills():
    plan = FaultPlan("squeeze", (
        FaultAction("table_squeeze", at_cycle=1000, l1_entries=2, l2_ways=1),
    ))
    sim, res, _ = run_sim(plan)
    table = sim.scheme.table
    assert all(t.capacity == 2 for t in table.l1_tables)
    assert table.l2_table.ways == 1
    event = res.fault_trace[0]
    assert event["kind"] == "table_squeeze" and event["hit"]


def test_table_squeeze_misses_on_tableless_scheme():
    plan = FaultPlan("squeeze", (
        FaultAction("table_squeeze", at_cycle=1000, l1_entries=2),
    ))
    _, res, _ = run_sim(plan, scheme="logtm-se")
    assert res.fault_trace[0]["hit"] is False


def test_pool_cap_freezes_pool_and_reclaims():
    plan = PRESETS["pool-pressure"]
    sim, res, program = run_sim(plan, oracle=True)
    pool = sim.scheme.pool
    assert pool.max_pages >= 1                  # cap installed mid-run
    assert res.fault_trace[0]["hit"]
    # the run still completes and stays functionally correct
    assert sim.oracle.verify()["passed"]
    program.verify(res.memory)


def test_sig_storm_forces_lookups():
    plan = PRESETS["sig-storm"]
    sim, res, _ = run_sim(plan)
    stats = sim.scheme.summary.stats()
    assert stats["forced_positives"] > 0
    # the storm window closed again by the end of the run
    assert sim.scheme.summary.force_positive is False


def test_kill_tx_inflates_aborts():
    _, base, _ = run_sim(None)
    _, hit, _ = run_sim(PRESETS["tx-kill"])
    killed = [ev for ev in hit.fault_trace if ev["hit"]]
    assert killed
    assert hit.aborts >= base.aborts + len(killed[0]["detail"]["victims"])


def test_delay_core_charges_the_target():
    plan = FaultPlan("freeze", (
        FaultAction("delay_core", at_cycle=500, core=0, cycles=5000),
    ))
    _, base, _ = run_sim(None)
    _, res, _ = run_sim(plan)
    assert res.total_cycles > base.total_cycles


def test_backoff_scale_changes_timing():
    plan = FaultPlan("slow", (
        FaultAction("backoff_scale", at_cycle=0, duration=10**9, factor=16.0),
    ))
    _, base, _ = run_sim(None)
    _, res, _ = run_sim(plan)
    assert res.to_json() != base.to_json()


def test_injector_requires_known_handler():
    # every declared kind has a _do_ handler on the injector
    inj = FaultInjector(FaultPlan("empty"))
    from repro.faults import KINDS
    for kind in KINDS:
        assert hasattr(inj, f"_do_{kind}")


# ----------------------------------------------------------------------
# functional correctness under every preset, every scheme
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheme",
    ["suv", "logtm-se", "lazy", "dyntm+suv", "redirect+lazy+stall+serial"],
)
@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_presets_preserve_correctness(scheme, preset):
    sim, res, program = run_sim(PRESETS[preset], scheme=scheme, oracle=True)
    assert sim.oracle.verify()["passed"]
    program.verify(res.memory)


@pytest.mark.parametrize("workload", ["synthetic", "ssca2"])
@pytest.mark.parametrize("plan", ["tx-kill", "pool-pressure"])
def test_fault_campaign_covers_suv_lazy_hybrid(workload, plan):
    """The SUV-VM + lazy-CD hybrid keeps atomicity under injected faults
    on both campaign workloads (the CI fault-campaign job runs the same
    combination end-to-end through the CLI)."""
    from repro.runner import ExperimentSpec, execute_spec

    spec = ExperimentSpec(
        workload=workload, scheme="redirect+lazy+stall+serial",
        scale="tiny", cores=4, fault_plan=plan, check=True,
    )
    res = execute_spec(spec)
    assert res.oracle is not None and res.oracle["passed"]
    assert res.fault_trace, "the plan must actually inject"
