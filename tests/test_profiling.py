"""Tests for the host-profiling report (``repro profile``)."""

import json

import pytest

from repro.cli import main
from repro.profiling import format_profile, profile_spec
from repro.runner.spec import ExperimentSpec

SPEC = ExperimentSpec("ssca2", scheme="suv", scale="tiny", seed=3, cores=4)


def test_profile_spec_report_shape():
    report = profile_spec(SPEC, top=5)
    assert report["spec"] == SPEC.label()
    assert report["sort"] == "tottime"
    host = report["host"]
    assert host["wall_s"] > 0
    assert host["events_per_s"] > 0
    assert host["sim_cycles"] > 0
    assert 0 < len(report["hotspots"]) <= 5
    spot = report["hotspots"][0]
    assert set(spot) >= {"function", "file", "line", "ncalls",
                         "tottime_s", "cumtime_s", "percall_us"}
    # hotspots honour the sort key
    times = [s["tottime_s"] for s in report["hotspots"]]
    assert times == sorted(times, reverse=True)
    shares = [row["share"] for row in report["components"].values()]
    assert all(0.0 <= share <= 1.0 for share in shares)
    json.dumps(report)  # must be JSON-serializable as-is


def test_profile_spec_rejects_unknown_sort():
    with pytest.raises(ValueError):
        profile_spec(SPEC, sort="wallclock")


def test_format_profile_renders_hotspots():
    report = profile_spec(SPEC, top=3, sort="cumtime")
    text = format_profile(report)
    assert SPEC.label() in text
    assert "events/s" in text
    for spot in report["hotspots"]:
        assert spot["function"] in text


def test_profile_cli_json(capsys):
    rc = main(["profile", "ssca2", "suv", "--scale", "tiny", "--cores", "4",
               "--seed", "3", "--top", "5", "--json"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["scheme"] == "suv"
    assert len(report["hotspots"]) <= 5


def test_profile_cli_text(capsys):
    rc = main(["profile", "ssca2", "suv", "--scale", "tiny", "--cores", "4",
               "--seed", "3", "--top", "3"])
    assert rc == 0
    assert "profile —" in capsys.readouterr().out
